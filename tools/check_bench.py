#!/usr/bin/env python3
"""CI perf-trajectory gate: compare a fresh BENCH_suite.json against the
committed bench/baseline.json and fail on regression.

Usage:
    tools/check_bench.py NEW_JSON BASELINE_JSON [--tolerance 0.25]
                         [--min-wall-ms 100] [--extra MORE_JSON ...]
                         [--min-staged-speedup 1.0] [--min-simd-speedup 0]

What is gated, and why (DESIGN.md §6):

* modeled_kernel_ms — the device model's price of the launch schedule.
  Deterministic and machine-independent, so any increase beyond the
  tolerance against the baseline is a real schedule/cost regression and
  fails the job.
* speedup (seq wall / threaded wall) — host wall-clock enters the gate
  only through this machine-relative ratio, which survives the move
  between the baseline host and CI runners.  A drop beyond the tolerance
  fails the job, but only for cases whose sequential wall time clears
  --min-wall-ms on BOTH sides; faster cases are timing noise.
* --min-speedup N (off by default) — an ABSOLUTE floor on the threading
  speedup of cases whose new sequential wall clears --min-wall-ms and
  that match --min-speedup-kinds (entries are "kind" or
  "kind/precision", default "qr/8d": the compute-dominated acceptance
  case with the most per-task work; back substitution spends a large
  fraction of its wall in sequential staging, so a flat floor there
  would be noise-gated).  The floor is skipped entirely when the new
  run's hardware_concurrency is below 2 — a single-core host cannot pay
  for threading, and failing it there would gate physics, not code.
  This floor is the guard the relative check cannot provide when the
  committed baseline was recorded on a host with fewer cores than CI
  (its ratios are ~1.0 there): a change that silently disables the
  threaded path keeps the ratio at 1.0 and passes the relative gate,
  but not the floor.
* staged_speedup (interleaved wall / staged-resident wall, the layout
  cases of bench_suite) — gated like the threading speedup: a relative
  drop beyond the tolerance against the baseline fails (when the
  interleaved wall clears --min-wall-ms on both sides), and
  --min-staged-speedup (default 1.0) is an ABSOLUTE floor: staged
  residency must never be slower than per-launch interleaved
  round-tripping.  Unlike the threading floor it applies on any host —
  residency saves work even on one core — so it is not
  hardware_concurrency-gated.
* simd_speedup (forced-scalar wall / forced-ISA wall, the simd cases of
  bench_suite; the "isa" field joins the case key) — gated relatively
  against the baseline like the other wall ratios, and
  --min-simd-speedup (off by default) is an ABSOLUTE floor over every
  new case carrying the field whose sequential (forced-scalar) wall
  clears --min-wall-ms.  Per-ISA cases only exist on hosts that can run
  the ISA, so coverage of, say, an avx512 case is only enforced once it
  is committed to the baseline — keep the baseline to cases the CI
  runner fleet supports.
* cache_hit_speedup (cold-pipeline wall / warm-cache wall, the servehit
  cases of bench_serve) — gated relatively against the baseline like the
  other wall ratios (the field doubles as the case's "speedup"), and
  --min-cache-hit-speedup (off by default) is an ABSOLUTE floor over
  every new case carrying the field whose cold wall clears --min-wall-ms:
  a factor-cache hit replays strictly fewer launches than the cold
  pipeline, so serving warm must beat cold outright on any host —
  a cache that stops paying for itself is a regression even where the
  baseline ratios do not apply.
* dag_speedup (fork-join wall / DAG-schedule wall, the dagsolve cases of
  bench_suite) and makespan_ratio (serialized modeled schedule / modeled
  DAG makespan, dry-run) — gated by --min-dag-speedup (off by default):
  the measured ratio is an absolute floor with the same
  hardware_concurrency >= 2 guard as --min-speedup, while the modeled
  makespan_ratio must exceed 1 on every case carrying it, on any host —
  the dry-run pricer is machine-independent (DESIGN.md §13).
* bit_identical / tally_conserved — must be true in the new run
  (the bench binary also enforces this; the gate double-checks the
  artifact CI archives).
* coverage — every baseline case must still exist in the new run, so a
  regression can't hide by deleting its case.  New cases are reported
  and pass; commit a refreshed baseline to start gating them.
* --extra PATH (repeatable) — merge the cases of further bench
  artifacts (e.g. BENCH_path.json from bench_path_tracking) into the
  new run before gating, so one baseline file covers every suite.
  Duplicate case keys across artifacts are an error: a case silently
  shadowing another would soften the gate.  hardware_concurrency is
  taken from the primary NEW_JSON (the absolute speedup floor applies
  to its cases).

Stdlib only; exit code 0 = pass, 1 = regression, 2 = usage/parse error.
"""

import argparse
import json
import sys


def case_key(case):
    # "isa" distinguishes the per-ISA simd ablation cases; absent (and
    # empty) everywhere else, so pre-simd baselines keep their keys.
    return (case["kind"], case["precision"], case["rows"], case["cols"],
            case["tile"], case.get("isa", ""))


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not doc.get("cases"):
        print(f"check_bench: {path} has no cases", file=sys.stderr)
        sys.exit(2)
    return doc


def load_cases(path):
    return {case_key(c): c for c in load_doc(path)["cases"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("new_json")
    ap.add_argument("baseline_json")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative regression (default 0.25)")
    ap.add_argument("--min-wall-ms", type=float, default=100.0,
                    help="gate the speedup ratio only when the sequential "
                         "wall time clears this floor on both sides")
    ap.add_argument("--min-speedup", type=float, default=0.0,
                    help="absolute threading-speedup floor for cases whose "
                         "new sequential wall clears --min-wall-ms "
                         "(0 = disabled)")
    ap.add_argument("--min-speedup-kinds", default="qr/8d",
                    help="comma-separated 'kind' or 'kind/precision' "
                         "entries the absolute floor applies to "
                         "(default: qr/8d)")
    ap.add_argument("--min-simd-speedup", type=float, default=0.0,
                    help="absolute floor on the forced-ISA vs forced-scalar "
                         "ratio of simd cases whose scalar wall clears "
                         "--min-wall-ms (0 = disabled)")
    ap.add_argument("--min-cache-hit-speedup", type=float, default=0.0,
                    help="absolute floor on the cold vs warm-cache ratio of "
                         "servehit cases whose cold wall clears "
                         "--min-wall-ms (0 = disabled)")
    ap.add_argument("--min-dag-speedup", type=float, default=0.0,
                    help="absolute floor on the fork-join vs DAG-schedule "
                         "wall ratio of cases carrying dag_speedup whose "
                         "fork-join wall clears --min-wall-ms; like "
                         "--min-speedup it is skipped when the new run's "
                         "hardware_concurrency is below 2 (one core cannot "
                         "overlap work).  When enabled it also requires "
                         "makespan_ratio > 1 on every new case carrying it "
                         "— the machine-independent dry-run check that the "
                         "DAG schedule prices strictly below the serialized "
                         "fork-join schedule (0 = disabled)")
    ap.add_argument("--min-staged-speedup", type=float, default=1.0,
                    help="absolute floor on the staged-resident vs "
                         "interleaved ratio of layout cases whose "
                         "interleaved wall clears --min-wall-ms "
                         "(0 = disabled)")
    ap.add_argument("--extra", action="append", default=[],
                    help="additional bench JSON whose cases join the new "
                         "run before gating (repeatable)")
    args = ap.parse_args()

    new_doc = load_doc(args.new_json)
    new = {case_key(c): c for c in new_doc["cases"]}
    for path in args.extra:
        for case in load_doc(path)["cases"]:
            key = case_key(case)
            if key in new:
                print(f"check_bench: duplicate case "
                      f"{'/'.join(str(k) for k in key)} in {path}",
                      file=sys.stderr)
                sys.exit(2)
            new[key] = case
    base = load_cases(args.baseline_json)
    tol = args.tolerance
    floor_kinds = args.min_speedup_kinds.split(",")
    # A host that has no second core cannot pay for threading; apply the
    # absolute floor only where the hardware could.
    floor_active = (args.min_speedup > 0.0
                    and new_doc.get("hardware_concurrency", 0) >= 2)
    if args.min_speedup > 0.0 and not floor_active:
        print("note: absolute speedup floor skipped "
              f"(hardware_concurrency "
              f"{new_doc.get('hardware_concurrency', 0)} < 2)")
    failures, notes = [], []

    for key in sorted(base):
        name = "/".join(str(k) for k in key)
        if key not in new:
            failures.append(f"{name}: case missing from the new run")
            continue
        b, n = base[key], new[key]

        if not n.get("bit_identical", False):
            failures.append(f"{name}: threaded run not bit-identical")
        if not n.get("tally_conserved", False):
            failures.append(f"{name}: tally not conserved")

        bm, nm = b["modeled_kernel_ms"], n["modeled_kernel_ms"]
        if bm <= 0.0:
            # A zero/negative baseline admits no relative comparison (and
            # nm/bm below would divide by zero); surface it rather than
            # silently passing or crashing the gate.
            notes.append(
                f"{name}: baseline modeled kernel is {bm:.3f} ms — relative "
                f"gate skipped; re-record the baseline")
        elif nm > bm * (1.0 + tol):
            failures.append(
                f"{name}: modeled kernel {nm:.3f} ms vs baseline {bm:.3f} ms "
                f"(+{100.0 * (nm / bm - 1.0):.1f}% > {100.0 * tol:.0f}%)")
        elif nm < bm * (1.0 - tol):
            notes.append(
                f"{name}: modeled kernel improved to {nm:.3f} ms "
                f"({100.0 * (1.0 - nm / bm):.1f}% faster) — consider "
                f"refreshing the baseline")

        walls_clear = (b.get("seq_wall_ms", 0.0) >= args.min_wall_ms
                       and n.get("seq_wall_ms", 0.0) >= args.min_wall_ms)
        if walls_clear:
            # One relative wall-ratio gate per case: staged_speedup
            # (interleaved/staged, the layout cases) where present,
            # otherwise the threading speedup.  Layout cases carry the
            # same value in both fields today, so gating one of them
            # keeps the signal without a duplicate check.
            ratio_key, label = (("staged_speedup", "staged")
                                if "staged_speedup" in b
                                else ("speedup", "threading"))
            bs, ns = b.get(ratio_key, 0.0), n.get(ratio_key, 0.0)
            if bs > 0 and ns < bs * (1.0 - tol):
                failures.append(
                    f"{name}: {label} speedup {ns:.2f}x vs baseline "
                    f"{bs:.2f}x (-{100.0 * (1.0 - ns / bs):.1f}% > "
                    f"{100.0 * tol:.0f}%)")
        if (floor_active
                and (key[0] in floor_kinds
                     or f"{key[0]}/{key[1]}" in floor_kinds)
                and n.get("seq_wall_ms", 0.0) >= args.min_wall_ms
                and n.get("speedup", 0.0) < args.min_speedup):
            failures.append(
                f"{name}: threading speedup {n.get('speedup', 0.0):.2f}x "
                f"below the absolute floor {args.min_speedup:.2f}x")

    # The absolute staged floor covers EVERY new layout case, baselined
    # or not — a fresh layout case must not ship slower than interleaved.
    if args.min_staged_speedup > 0.0:
        for key in sorted(new):
            n = new[key]
            if ("staged_speedup" in n
                    and n.get("seq_wall_ms", 0.0) >= args.min_wall_ms
                    and n["staged_speedup"] < args.min_staged_speedup):
                failures.append(
                    "/".join(str(k) for k in key) +
                    f": staged speedup {n['staged_speedup']:.2f}x below "
                    f"the absolute floor {args.min_staged_speedup:.2f}x")

    # Likewise the absolute simd floor: every new case carrying a
    # simd_speedup (the forced-scalar vs forced-ISA ablations) must clear
    # it, baselined or not — explicit vectorization that stops paying for
    # itself is a regression even on a runner the baseline never saw.
    if args.min_simd_speedup > 0.0:
        for key in sorted(new):
            n = new[key]
            if ("simd_speedup" in n
                    and n.get("seq_wall_ms", 0.0) >= args.min_wall_ms
                    and n["simd_speedup"] < args.min_simd_speedup):
                failures.append(
                    "/".join(str(k) for k in key) +
                    f": simd speedup {n['simd_speedup']:.2f}x below "
                    f"the absolute floor {args.min_simd_speedup:.2f}x")

    # And the absolute cache floor: every new case carrying a
    # cache_hit_speedup (the warm-vs-cold factor-cache replays of
    # bench_serve) must clear it, baselined or not — a warm solve replays
    # a strict subset of the cold launches, so losing to cold is a
    # regression on any host.
    if args.min_cache_hit_speedup > 0.0:
        for key in sorted(new):
            n = new[key]
            if ("cache_hit_speedup" in n
                    and n.get("seq_wall_ms", 0.0) >= args.min_wall_ms
                    and n["cache_hit_speedup"] < args.min_cache_hit_speedup):
                failures.append(
                    "/".join(str(k) for k in key) +
                    f": cache-hit speedup {n['cache_hit_speedup']:.2f}x "
                    f"below the absolute floor "
                    f"{args.min_cache_hit_speedup:.2f}x")

    # The DAG-schedule gate is two-sided.  The measured wall ratio
    # (fork-join wall / DAG wall) is an absolute floor like --min-speedup,
    # and inherits its hardware_concurrency >= 2 guard — event-driven
    # execution cannot beat fork-join without a second core to overlap
    # on.  The dry-run makespan_ratio (serialized modeled schedule / DAG
    # modeled makespan) is machine-INDEPENDENT, so it is required to
    # exceed 1 unconditionally whenever the gate is enabled: the graph
    # must expose real overlap even on hosts where walls cannot show it.
    if args.min_dag_speedup > 0.0:
        dag_floor_active = new_doc.get("hardware_concurrency", 0) >= 2
        if not dag_floor_active:
            print("note: absolute dag speedup floor skipped "
                  f"(hardware_concurrency "
                  f"{new_doc.get('hardware_concurrency', 0)} < 2)")
        for key in sorted(new):
            n = new[key]
            name = "/".join(str(k) for k in key)
            if (dag_floor_active and "dag_speedup" in n
                    and n.get("seq_wall_ms", 0.0) >= args.min_wall_ms
                    and n["dag_speedup"] < args.min_dag_speedup):
                failures.append(
                    f"{name}: dag speedup {n['dag_speedup']:.2f}x below "
                    f"the absolute floor {args.min_dag_speedup:.2f}x")
            if "makespan_ratio" in n and n["makespan_ratio"] <= 1.0:
                failures.append(
                    f"{name}: modeled makespan ratio "
                    f"{n['makespan_ratio']:.3f} is not above 1 — the DAG "
                    f"schedule prices no better than fork-join")

    for key in sorted(set(new) - set(base)):
        notes.append("/".join(str(k) for k in key) +
                     ": new case, not yet in the baseline")

    for msg in notes:
        print(f"note: {msg}")
    if failures:
        print(f"\ncheck_bench: {len(failures)} regression(s) against "
              f"{args.baseline_json}:", file=sys.stderr)
        for msg in failures:
            print(f"  FAIL {msg}", file=sys.stderr)
        return 1
    print(f"check_bench: {len(base)} case(s) within {100.0 * tol:.0f}% of "
          f"{args.baseline_json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
