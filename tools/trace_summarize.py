#!/usr/bin/env python3
"""Summarize a Chrome trace_event JSON produced by obs::write_chrome_trace
(DESIGN.md section 12).

Reads the trace, validates its shape (complete "X" events with ts/dur and
the args the exporter attaches), and prints:
  * per-category totals: span count, measured wall ms, modeled ms, and the
    measured/modeled ratio (how far host execution sits from the device
    cost model, per category);
  * the top spans by SELF time (own duration minus direct children),
    aggregated by (name, category).

Used three ways: as the human profiling entry point (README "profiling a
run"), as the CI validity check on the bench_suite --trace artifact
(--require-categories), and from tools/test_trace_summarize.py via CTest.
Stdlib only, like check_bench.py.
"""

import argparse
import json
import sys
from collections import defaultdict

REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


def validate(doc):
    """Checks the Chrome-trace shape; returns the event list.

    Raises ValueError on anything write_chrome_trace would never emit.
    """
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"),
                                                   list):
        raise ValueError("not a Chrome trace: missing 'traceEvents' list")
    events = []
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            raise ValueError("event %d is not an object" % i)
        for key in REQUIRED_EVENT_KEYS:
            if key not in ev:
                raise ValueError("event %d missing %r" % (i, key))
        if ev["ph"] != "X":
            raise ValueError("event %d has phase %r, expected complete 'X'"
                             % (i, ev["ph"]))
        if not isinstance(ev["ts"], (int, float)) or \
           not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
            raise ValueError("event %d has malformed ts/dur" % i)
        if not isinstance(ev.get("args"), dict):
            raise ValueError("event %d missing args object" % i)
        events.append(ev)
    return events


def self_times_us(events):
    """Self time (dur minus direct children) per event, keyed by id(event).

    Events nest by containment within one (pid, tid) lane — the exporter
    guarantees a parent starts no later and ends no earlier than its
    children, so a sort by (ts, -end) makes a simple stack walk exact.
    """
    lanes = defaultdict(list)
    for ev in events:
        lanes[(ev["pid"], ev["tid"])].append(ev)
    self_us = {}
    for lane in lanes.values():
        lane.sort(key=lambda e: (e["ts"], -(e["ts"] + e["dur"])))
        stack = []  # (event id, end ts) of currently open ancestors
        for ev in lane:
            end = ev["ts"] + ev["dur"]
            while stack and ev["ts"] >= stack[-1][1] - 1e-9:
                stack.pop()
            self_us[id(ev)] = ev["dur"]
            if stack:
                self_us[stack[-1][0]] -= ev["dur"]
            stack.append((id(ev), end))
    return self_us


def critical_path(events, category=None):
    """Critical-path rollup over the trace's execution lanes.

    Built for DAG-scheduler traces (category "sched"), where every lane
    is a worker draining ready tasks: reports per-lane busy time, the
    average parallelism (total busy ms / wall ms), and a greedy backward
    critical chain — start from the latest-ending span, repeatedly jump
    to the latest-ending span that finishes no later than the current
    span starts (any lane).  On a trace produced by an event-driven run
    the chain approximates the dependency path that bounded the makespan:
    a worker only sits idle when nothing is ready, so each backward jump
    lands on work that (transitively) gated the next span.
    """
    pool = [ev for ev in events
            if category is None or ev["cat"] == category]
    if not pool:
        return {"category": category, "spans": 0, "lanes": {},
                "wall_ms": 0.0, "busy_ms": 0.0, "parallelism": None,
                "chain": [], "chain_ms": 0.0, "chain_coverage": None}

    start = min(ev["ts"] for ev in pool)
    end = max(ev["ts"] + ev["dur"] for ev in pool)
    wall_ms = (end - start) / 1e3

    lanes = {}
    for ev in pool:
        lane = lanes.setdefault("%s/%s" % (ev["pid"], ev["tid"]),
                                {"spans": 0, "busy_ms": 0.0})
        lane["spans"] += 1
        lane["busy_ms"] += ev["dur"] / 1e3
    busy_ms = sum(lane["busy_ms"] for lane in lanes.values())

    # Greedy backward chain; ties (equal end) break toward the longer
    # span so the chain prefers substantive work over instants.
    by_end = sorted(pool, key=lambda e: (e["ts"] + e["dur"], e["dur"]))
    chain = []
    cur = by_end[-1]
    while cur is not None:
        chain.append(cur)
        cutoff = cur["ts"]
        nxt = None
        for ev in reversed(by_end):
            if ev["ts"] + ev["dur"] <= cutoff + 1e-9 and ev is not cur:
                nxt = ev
                break
        cur = nxt
    chain.reverse()
    chain_ms = sum(ev["dur"] for ev in chain) / 1e3
    return {
        "category": category,
        "spans": len(pool),
        "lanes": lanes,
        "wall_ms": wall_ms,
        "busy_ms": busy_ms,
        "parallelism": busy_ms / wall_ms if wall_ms > 0 else None,
        "chain": [{"name": ev["name"], "ms": ev["dur"] / 1e3,
                   "lane": "%s/%s" % (ev["pid"], ev["tid"])}
                  for ev in chain],
        "chain_ms": chain_ms,
        "chain_coverage": chain_ms / wall_ms if wall_ms > 0 else None,
    }


def print_critical_path(report, out=sys.stdout, top=12):
    label = report["category"] or "all categories"
    print("\ncritical path (%s): %d spans" % (label, report["spans"]),
          file=out)
    if not report["spans"]:
        return
    print("  wall %.3f ms, busy %.3f ms, avg parallelism %.2fx" %
          (report["wall_ms"], report["busy_ms"], report["parallelism"]),
          file=out)
    for name in sorted(report["lanes"]):
        lane = report["lanes"][name]
        print("  lane %-12s %6d spans %12.3f ms busy" %
              (name, lane["spans"], lane["busy_ms"]), file=out)
    print("  chain: %d links, %.3f ms (%.0f%% of wall)" %
          (len(report["chain"]), report["chain_ms"],
           100.0 * report["chain_coverage"]), file=out)
    links = report["chain"]
    shown = links if len(links) <= top else links[-top:]
    if len(links) > top:
        print("    ... %d earlier links elided" % (len(links) - top),
              file=out)
    for link in shown:
        print("    %-32s %10.3f ms  [%s]" %
              (link["name"][:32], link["ms"], link["lane"]), file=out)


def summarize(doc, top=12):
    """Aggregates a validated trace document into a plain dict."""
    events = validate(doc)
    self_us = self_times_us(events)

    cats = {}
    spans = {}
    for ev in events:
        args = ev["args"]
        cat = cats.setdefault(ev["cat"], {
            "count": 0, "measured_ms": 0.0, "modeled_ms": 0.0,
            "modeled_spans": 0,
        })
        cat["count"] += 1
        cat["measured_ms"] += ev["dur"] / 1e3
        if "modeled_ms" in args:
            cat["modeled_ms"] += args["modeled_ms"]
            cat["modeled_spans"] += 1

        span = spans.setdefault((ev["name"], ev["cat"]), {
            "name": ev["name"], "cat": ev["cat"], "count": 0,
            "self_ms": 0.0, "measured_ms": 0.0, "modeled_ms": 0.0,
        })
        span["count"] += 1
        span["self_ms"] += self_us[id(ev)] / 1e3
        span["measured_ms"] += ev["dur"] / 1e3
        if "modeled_ms" in args:
            span["modeled_ms"] += args["modeled_ms"]

    for cat in cats.values():
        cat["ratio"] = (cat["measured_ms"] / cat["modeled_ms"]
                        if cat["modeled_ms"] > 0 else None)

    top_self = sorted(spans.values(), key=lambda s: -s["self_ms"])[:top]
    dropped = 0
    other = doc.get("otherData")
    if isinstance(other, dict):
        dropped = other.get("dropped_spans", 0)
    return {"categories": cats, "top_self": top_self, "dropped": dropped,
            "events": len(events)}


def print_summary(summary, out=sys.stdout):
    print("%d spans, %d dropped" % (summary["events"], summary["dropped"]),
          file=out)
    print("\nper category (modeled ms from the device cost model):",
          file=out)
    print("  %-10s %8s %14s %14s %10s" %
          ("category", "spans", "measured ms", "modeled ms", "ratio"),
          file=out)
    for name in sorted(summary["categories"]):
        cat = summary["categories"][name]
        ratio = "%.2fx" % cat["ratio"] if cat["ratio"] is not None else "-"
        modeled = ("%.3f" % cat["modeled_ms"]
                   if cat["modeled_spans"] else "-")
        print("  %-10s %8d %14.3f %14s %10s" %
              (name, cat["count"], cat["measured_ms"], modeled, ratio),
              file=out)
    print("\ntop spans by self time:", file=out)
    print("  %-24s %-10s %8s %12s %12s" %
          ("span", "category", "count", "self ms", "modeled ms"), file=out)
    for span in summary["top_self"]:
        print("  %-24s %-10s %8d %12.3f %12.3f" %
              (span["name"][:24], span["cat"], span["count"],
               span["self_ms"], span["modeled_ms"]), file=out)


def main():
    parser = argparse.ArgumentParser(
        description="Summarize an mdlsq Chrome trace (obs/export.hpp).")
    parser.add_argument("trace", help="trace JSON path")
    parser.add_argument("--top", type=int, default=12,
                        help="spans to list by self time")
    parser.add_argument("--require-categories", default="",
                        metavar="A,B,...",
                        help="fail unless every named category appears "
                             "(the CI artifact validity check)")
    parser.add_argument("--critical-path", nargs="?", const="",
                        default=None, metavar="CATEGORY",
                        help="append the critical-path rollup (per-lane "
                             "occupancy, avg parallelism, greedy backward "
                             "chain); optional category filter, e.g. "
                             "'sched' for DAG-scheduler task spans")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print("trace_summarize: cannot read %s: %s" % (args.trace, err),
              file=sys.stderr)
        sys.exit(2)

    try:
        summary = summarize(doc, top=args.top)
    except ValueError as err:
        print("trace_summarize: malformed trace: %s" % err, file=sys.stderr)
        sys.exit(2)

    print_summary(summary)

    if args.critical_path is not None:
        report = critical_path(validate(doc),
                               category=args.critical_path or None)
        print_critical_path(report, top=args.top)

    required = [c for c in args.require_categories.split(",") if c]
    missing = [c for c in required if c not in summary["categories"]]
    if missing:
        print("\ntrace_summarize: FAIL: missing required categories: %s"
              % ", ".join(missing), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
