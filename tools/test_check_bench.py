#!/usr/bin/env python3
"""Unit tests for the CI perf gate (tools/check_bench.py), run from CTest
as `check_bench_unit`.  Stdlib only."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench  # noqa: E402


def qr_case(**over):
    case = {
        "kind": "qr", "precision": "2d", "rows": 128, "cols": 64, "tile": 8,
        "modeled_kernel_ms": 50.0, "seq_wall_ms": 400.0, "par_wall_ms": 200.0,
        "speedup": 2.0, "bit_identical": True, "tally_conserved": True,
    }
    case.update(over)
    return case


class CheckBenchTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write_doc(self, name, cases, hw=4):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"hardware_concurrency": hw, "cases": cases}, f)
        return path

    def run_gate(self, new, base, *flags):
        argv = sys.argv
        sys.argv = ["check_bench.py", new, base, *flags]
        try:
            return check_bench.main()
        finally:
            sys.argv = argv

    def test_identical_runs_pass(self):
        new = self.write_doc("new.json", [qr_case()])
        base = self.write_doc("base.json", [qr_case()])
        self.assertEqual(self.run_gate(new, base), 0)

    def test_modeled_regression_fails(self):
        new = self.write_doc("new.json", [qr_case(modeled_kernel_ms=80.0)])
        base = self.write_doc("base.json", [qr_case()])
        self.assertEqual(self.run_gate(new, base), 1)

    def test_missing_case_fails(self):
        new = self.write_doc("new.json", [qr_case()])
        base = self.write_doc("base.json",
                              [qr_case(), qr_case(precision="4d")])
        self.assertEqual(self.run_gate(new, base), 1)

    def test_zero_baseline_modeled_ms_is_skipped_not_crashed(self):
        # A nonpositive baseline denominator must neither divide by zero
        # nor fail the gate — it is surfaced as a note.
        new = self.write_doc("new.json", [qr_case(modeled_kernel_ms=10.0)])
        base = self.write_doc("base.json", [qr_case(modeled_kernel_ms=0.0)])
        self.assertEqual(self.run_gate(new, base), 0)
        base = self.write_doc("base2.json", [qr_case(modeled_kernel_ms=-1.0)])
        self.assertEqual(self.run_gate(new, base), 0)

    def test_isa_field_joins_the_case_key(self):
        # Two cases equal in every dimension but "isa" must coexist (no
        # duplicate-key abort) and match their own baseline entries.
        cases = [qr_case(kind="simd", isa="avx2", simd_speedup=1.6),
                 qr_case(kind="simd", isa="avx512", simd_speedup=1.8)]
        new = self.write_doc("new.json", cases)
        base = self.write_doc("base.json", cases)
        self.assertEqual(self.run_gate(new, base), 0)

    def test_simd_floor_gates_new_cases(self):
        base = self.write_doc("base.json", [qr_case()])
        below = self.write_doc("below.json", [
            qr_case(),
            qr_case(kind="simd", isa="avx2", simd_speedup=1.1)])
        self.assertEqual(
            self.run_gate(below, base, "--min-simd-speedup", "1.3"), 1)
        above = self.write_doc("above.json", [
            qr_case(),
            qr_case(kind="simd", isa="avx2", simd_speedup=1.5)])
        self.assertEqual(
            self.run_gate(above, base, "--min-simd-speedup", "1.3"), 0)

    def test_simd_floor_respects_min_wall(self):
        # Below --min-wall-ms the ratio is timing noise: not gated.
        base = self.write_doc("base.json", [qr_case()])
        new = self.write_doc("new.json", [
            qr_case(),
            qr_case(kind="simd", isa="avx2", simd_speedup=0.5,
                    seq_wall_ms=5.0)])
        self.assertEqual(
            self.run_gate(new, base, "--min-simd-speedup", "1.3"), 0)

    def test_simd_floor_off_by_default(self):
        base = self.write_doc("base.json", [qr_case()])
        new = self.write_doc("new.json", [
            qr_case(),
            qr_case(kind="simd", isa="avx2", simd_speedup=0.5)])
        self.assertEqual(self.run_gate(new, base), 0)

    def test_cache_floor_gates_new_cases(self):
        # The warm-cache floor covers every new case carrying the field,
        # baselined or not — a fresh servehit case must not ship with the
        # warm path losing to cold.
        base = self.write_doc("base.json", [qr_case()])
        below = self.write_doc("below.json", [
            qr_case(),
            qr_case(kind="servehit", speedup=1.1, cache_hit_speedup=1.1)])
        self.assertEqual(
            self.run_gate(below, base, "--min-cache-hit-speedup", "1.3"), 1)
        above = self.write_doc("above.json", [
            qr_case(),
            qr_case(kind="servehit", speedup=2.5, cache_hit_speedup=2.5)])
        self.assertEqual(
            self.run_gate(above, base, "--min-cache-hit-speedup", "1.3"), 0)

    def test_cache_floor_respects_min_wall(self):
        base = self.write_doc("base.json", [qr_case()])
        new = self.write_doc("new.json", [
            qr_case(),
            qr_case(kind="servehit", cache_hit_speedup=0.5,
                    seq_wall_ms=5.0)])
        self.assertEqual(
            self.run_gate(new, base, "--min-cache-hit-speedup", "1.3"), 0)

    def test_cache_floor_off_by_default(self):
        base = self.write_doc("base.json", [qr_case()])
        new = self.write_doc("new.json", [
            qr_case(),
            qr_case(kind="servehit", cache_hit_speedup=0.5)])
        self.assertEqual(self.run_gate(new, base), 0)

    def test_dag_floor_gates_measured_ratio(self):
        base = self.write_doc("base.json", [qr_case()])
        below = self.write_doc("below.json", [
            qr_case(),
            qr_case(kind="dagsolve", speedup=0.0, dag_speedup=1.05,
                    makespan_ratio=2.0)])
        self.assertEqual(
            self.run_gate(below, base, "--min-dag-speedup", "1.15"), 1)
        above = self.write_doc("above.json", [
            qr_case(),
            qr_case(kind="dagsolve", speedup=0.0, dag_speedup=1.4,
                    makespan_ratio=2.0)])
        self.assertEqual(
            self.run_gate(above, base, "--min-dag-speedup", "1.15"), 0)

    def test_dag_measured_floor_skipped_on_one_core(self):
        # One core cannot overlap work: the measured floor is waived there
        # (like --min-speedup) ...
        base = self.write_doc("base.json", [qr_case()], hw=1)
        new = self.write_doc("new.json", [
            qr_case(),
            qr_case(kind="dagsolve", speedup=0.0, dag_speedup=0.9,
                    makespan_ratio=2.0)], hw=1)
        self.assertEqual(
            self.run_gate(new, base, "--min-dag-speedup", "1.15"), 0)

    def test_dag_makespan_ratio_gated_on_any_host(self):
        # ... but the modeled makespan ratio is machine-independent, so a
        # schedule that prices no better than fork-join fails even on one
        # core.
        base = self.write_doc("base.json", [qr_case()], hw=1)
        new = self.write_doc("new.json", [
            qr_case(),
            qr_case(kind="dagsolve", speedup=0.0, dag_speedup=1.0,
                    makespan_ratio=1.0)], hw=1)
        self.assertEqual(
            self.run_gate(new, base, "--min-dag-speedup", "1.15"), 1)

    def test_dag_floor_off_by_default(self):
        base = self.write_doc("base.json", [qr_case()])
        new = self.write_doc("new.json", [
            qr_case(),
            qr_case(kind="dagsolve", speedup=0.0, dag_speedup=0.5,
                    makespan_ratio=0.9)])
        self.assertEqual(self.run_gate(new, base), 0)

    def test_non_bit_identical_fails(self):
        new = self.write_doc("new.json", [qr_case(bit_identical=False)])
        base = self.write_doc("base.json", [qr_case()])
        self.assertEqual(self.run_gate(new, base), 1)

    def test_unreadable_json_exits_2(self):
        path = os.path.join(self.dir.name, "broken.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("{not json")
        base = self.write_doc("base.json", [qr_case()])
        with self.assertRaises(SystemExit) as ctx:
            self.run_gate(path, base)
        self.assertEqual(ctx.exception.code, 2)


if __name__ == "__main__":
    unittest.main()
